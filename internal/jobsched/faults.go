package jobsched

// Degraded-mode scheduling: this file wires internal/faults into the
// multi-job runtime. Crash, excursion and straggler events are drawn
// from the scenario's deterministic per-node streams and scheduled on
// the des timeline; their handlers kill and re-enqueue affected jobs
// (capped exponential backoff, MaxRetries), reclaim and redistribute
// the freed power, quarantine crashed nodes out of the free list until
// recovery, emergency-re-cap jobs hit by a power excursion (reserving
// the derated node's cut so it cannot be double-granted), and stretch
// iteration times on straggling nodes. A per-node circuit breaker
// drains nodes that crash repeatedly. Pending fault events are
// cancelled once the last job completes so the engine drains at the
// true makespan.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/des"
	"repro/internal/faults"
	"repro/internal/power"
	"repro/internal/telemetry"
)

// Telemetry handles of the fault layer (ISSUE 4 acceptance set).
var (
	mFaultsInjected = telemetry.Default.Counter("clip_faults_injected_total",
		"fault events injected into the runtime (crashes, power excursions, stragglers)")
	mJobsRetried = telemetry.Default.Counter("clip_jobs_retried_total",
		"jobs killed by a fault and re-enqueued for retry")
	gWattsReclaimed = telemetry.Default.Gauge("clip_watts_reclaimed_total",
		"cumulative watts reclaimed from killed or re-capped jobs and returned to the pool")
	gQuarantined = telemetry.Default.Gauge("clip_node_quarantined",
		"nodes currently out of service (quarantined or drained)")
	mReschedSeconds = telemetry.Default.Histogram("clip_fault_resched_seconds",
		"simulated seconds between a job being killed by a fault and its restart",
		[]float64{1, 2, 5, 10, 30, 60, 120, 300, 600})
)

// des event kinds of the fault layer (the engine treats them as opaque
// labels; they make heap dumps and tests legible).
const (
	evkCrash uint16 = 1 + iota
	evkRecover
	evkExcursion
	evkExcursionEnd
	evkStraggler
	evkStragglerEnd
	evkRequeue
)

// FaultEvent is one entry of a run's fault log: every injection and
// every degraded-mode reaction, in event order. The rendered form is
// stable, so fixed-seed runs can assert byte-identical logs.
type FaultEvent struct {
	// T is the simulated time of the event.
	T float64
	// Kind names the event: crash, drain, recover, excursion,
	// excursion-end, straggler, straggler-end, kill, retry, requeue,
	// restart, recap, migrate, fail.
	Kind string
	// Node is the affected node id, or -1 for job-scoped events.
	Node int
	// Job is the affected job id, when any.
	Job string
	// Watts is the power reclaimed or released by the event, when any.
	Watts float64
	// Detail is a human-readable amplification.
	Detail string
}

// String renders the event as one stable log line.
func (e FaultEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%9.3f %-13s", e.T, e.Kind)
	if e.Node >= 0 {
		fmt.Fprintf(&b, " node=%d", e.Node)
	}
	if e.Job != "" {
		fmt.Fprintf(&b, " job=%s", e.Job)
	}
	if e.Watts != 0 {
		fmt.Fprintf(&b, " watts=%.1f", e.Watts)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	return b.String()
}

// FailedJob is a job that exhausted its retries (or had no node left to
// run on) and was removed from the system.
type FailedJob struct {
	ID       string
	Arrival  float64
	FailedAt float64
	// Retries is how many times the job was killed and re-tried before
	// failing.
	Retries int
	Reason  string
}

// FaultStats aggregates a run's fault activity.
type FaultStats struct {
	// Injected counts injected fault events (crashes + excursions +
	// stragglers).
	Injected   int
	Crashes    int
	Excursions int
	Stragglers int
	// Retries counts job kill → re-enqueue transitions.
	Retries int
	// Migrations counts jobs killed because an excursion re-cap was
	// infeasible on their fixed configuration.
	Migrations int
	// WattsReclaimed is the total power returned to the pool by kills
	// and re-caps.
	WattsReclaimed float64
}

// boundSlack absorbs floating-point rounding in the bound invariant.
const boundSlack = 1e-6

// initFaults arms the injector and schedules the first event of every
// per-node fault stream.
func (st *schedState) initFaults(sc faults.Scenario, nodes int) {
	st.inj = faults.NewInjector(sc, nodes)
	st.runningOn = make([]*runningJob, nodes)
	st.straggle = make([]float64, nodes)
	for i := range st.straggle {
		st.straggle[i] = 1
	}
	st.derated = make([]bool, nodes)
	st.reserved = make([]float64, nodes)
	st.retries = make(map[string]int)
	st.killedAt = make(map[string]float64)
	st.faultEvs = make(map[*des.Event]struct{})
	for i := 0; i < nodes; i++ {
		st.scheduleNextCrash(i)
		st.scheduleNextExcursion(i)
		st.scheduleNextStraggler(i)
	}
}

// scheduleFault schedules a tracked fault event: tracked events are
// cancelled en masse when the last job completes (stopFaults), and a
// fired event removes itself from the registry first so a recycled
// *des.Event can never be cancelled by a stale registration.
func (st *schedState) scheduleFault(dt float64, kind uint16, fn func()) {
	if st.faultsStopped {
		// The run is over (last job retired mid-handler); arming another
		// stream event would only delay the engine drain.
		return
	}
	var ev *des.Event
	scheduled, err := st.eng.After(dt, func() {
		delete(st.faultEvs, ev)
		if st.faultsStopped {
			return
		}
		fn()
	})
	if err != nil {
		st.failure = err
		return
	}
	ev = scheduled
	ev.Kind = kind
	st.faultEvs[ev] = struct{}{}
}

// stopFaults cancels every pending fault event so the engine drains at
// the true makespan instead of simulating faults on an empty cluster
// forever.
func (st *schedState) stopFaults() {
	st.faultsStopped = true
	for ev := range st.faultEvs {
		ev.Cancel()
	}
	st.faultEvs = nil
}

// jobDone retires one submitted job (finished, failed or cancelled).
// In a batch Run the fault streams stop with the last job so the engine
// drains at the true makespan; an online session idles between
// submissions, so its streams keep running until an explicit Drain.
func (st *schedState) jobDone() {
	st.jobsLeft--
	if st.jobsLeft == 0 && st.inj != nil && !st.faultsStopped && !st.online {
		st.stopFaults()
	}
}

// logFault appends to the run's fault log and mirrors the entry into
// the telemetry decision-event ring.
func (st *schedState) logFault(kind string, node int, job string, watts float64, detail string) {
	fe := FaultEvent{T: st.eng.Now(), Kind: kind, Node: node, Job: job, Watts: watts, Detail: detail}
	st.stats.FaultLog = append(st.stats.FaultLog, fe)
	telemetry.Default.Events().Append(telemetry.Event{
		Kind: telemetry.KindFault, TimeS: fe.T, App: job, Detail: fe.String(),
	})
}

// placeable reports whether a node may receive placements: healthy and
// not under an active power excursion. Without fault injection every
// node is placeable.
func (st *schedState) placeable(id int) bool {
	if st.inj == nil {
		return true
	}
	return st.inj.Health(id) == faults.Healthy && !st.nodeDerated(id)
}

// nodeDerated reports whether an excursion currently holds part of the
// node's budget in reserve.
func (st *schedState) nodeDerated(id int) bool { return st.derated != nil && st.derated[id] }

// freeHas reports whether id is in the (ascending) free list.
func (st *schedState) freeHas(id int) bool {
	lo, hi := 0, len(st.free)
	for lo < hi {
		mid := (lo + hi) / 2
		if st.free[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(st.free) && st.free[lo] == id
}

// syncNode reconciles one node's free-list membership with its health,
// derate and occupancy state.
func (st *schedState) syncNode(id int) {
	want := st.placeable(id) && st.runningOn[id] == nil
	has := st.freeHas(id)
	if want && !has {
		st.returnFree([]int{id})
	} else if !want && has {
		st.takeFree([]int{id})
	}
}

// releaseNodes clears a finished or killed job's node occupancy and
// returns the placeable subset to the free list (quarantined, drained
// and derated nodes stay out until their own recovery events).
func (st *schedState) releaseNodes(ids []int) {
	if st.inj == nil {
		st.returnFree(ids)
		return
	}
	ret := make([]int, 0, len(ids))
	for _, id := range ids {
		st.runningOn[id] = nil
		if st.placeable(id) {
			ret = append(ret, id)
		}
	}
	st.returnFree(ret)
}

// jobFactor returns the slowdown multiplier a job currently suffers:
// the worst straggler factor across its nodes (barrier-synchronised
// iterations run at the slowest node's pace).
func (st *schedState) jobFactor(rj *runningJob) float64 {
	if st.inj == nil {
		return 1
	}
	f := 1.0
	for _, g := range rj.globalIDs {
		if st.straggle[g] > f {
			f = st.straggle[g]
		}
	}
	return f
}

// --- crash / recovery ---------------------------------------------------

// scheduleNextCrash draws and schedules the node's next crash.
func (st *schedState) scheduleNextCrash(i int) {
	dt, ok := st.inj.NextCrash(i)
	if !ok {
		return
	}
	st.scheduleFault(dt, evkCrash, func() { st.nodeCrash(i) })
}

// nodeCrash handles a node-crash event: the resident job (if any) is
// killed for retry with its power reclaimed, the node is quarantined —
// or drained when the circuit breaker trips — and recovery is
// scheduled.
func (st *schedState) nodeCrash(i int) {
	start := time.Now()
	defer func() { mEventSeconds.Observe(time.Since(start).Seconds()) }()
	st.accountPower()
	mFaultsInjected.Inc()
	st.stats.Faults.Injected++
	st.stats.Faults.Crashes++
	h := st.inj.RecordCrash(i)
	st.logFault("crash", i, "", 0, fmt.Sprintf("crash #%d", st.inj.Crashes(i)))
	if h == faults.Drained {
		st.logFault("drain", i, "", 0, fmt.Sprintf("circuit breaker: %d crashes exceed limit", st.inj.Crashes(i)))
	}
	if rj := st.runningOn[i]; rj != nil {
		st.killJob(rj, i, fmt.Sprintf("node %d crashed", i))
	}
	st.syncNode(i)
	if h == faults.Drained {
		if st.inj.AllDrained() {
			st.failQueued("no nodes left: entire cluster drained")
		}
	} else {
		st.scheduleFault(st.inj.RecoveryDelay(i), evkRecover, func() { st.nodeRecover(i) })
	}
	st.reconcile("crash", st.s.Config.Reallocate)
}

// nodeRecover returns a quarantined node to service.
func (st *schedState) nodeRecover(i int) {
	start := time.Now()
	defer func() { mEventSeconds.Observe(time.Since(start).Seconds()) }()
	if !st.inj.Recover(i) {
		return
	}
	st.logFault("recover", i, "", 0, "")
	st.syncNode(i)
	st.scheduleNextCrash(i)
	st.reconcile("recover", false)
}

// killJob removes a running job from the cluster (crash or infeasible
// re-cap), reclaims its power, frees its surviving nodes and either
// schedules a backoff retry or reports the job failed once its retries
// are exhausted.
func (st *schedState) killJob(rj *runningJob, node int, cause string) {
	if rj.completion != nil {
		rj.completion.Cancel()
		rj.completion = nil
	}
	j := rj.job
	delete(st.running, j.ID)
	st.shadowOK = false
	reclaimed := rj.powerUsed
	st.freeW += reclaimed
	st.stats.Faults.WattsReclaimed += reclaimed
	gWattsReclaimed.Add(reclaimed)
	st.releaseNodes(rj.globalIDs)
	st.releaseRecord(rj) // rj must not be touched below this line
	st.logFault("kill", node, j.ID, reclaimed, cause)

	attempt := st.retries[j.ID] + 1
	st.retries[j.ID] = attempt
	if attempt > st.inj.MaxRetries() {
		// The final kill was not re-tried; report only completed retries.
		st.retries[j.ID] = attempt - 1
		st.failJob(j, fmt.Sprintf("%s; %d retries exhausted", cause, attempt-1))
		return
	}
	mJobsRetried.Inc()
	st.stats.Faults.Retries++
	backoff := st.inj.Backoff(j.ID, attempt)
	st.killedAt[j.ID] = st.eng.Now()
	ev, err := st.eng.After(backoff, func() { st.requeue(j) })
	if err != nil {
		st.failure = err
		return
	}
	ev.Kind = evkRequeue
	if st.pendingRequeue != nil {
		st.pendingRequeue[j.ID] = ev
	}
	st.logFault("retry", -1, j.ID, 0, fmt.Sprintf("attempt %d in %.2fs", attempt, backoff))
}

// requeue re-enqueues a killed job after its backoff delay.
func (st *schedState) requeue(j Job) {
	start := time.Now()
	defer func() { mEventSeconds.Observe(time.Since(start).Seconds()) }()
	delete(st.pendingRequeue, j.ID)
	if st.inj.AllDrained() {
		st.failJob(j, "no nodes left: entire cluster drained")
		st.publishState()
		return
	}
	st.logFault("requeue", -1, j.ID, 0, fmt.Sprintf("attempt %d", st.retries[j.ID]))
	st.queue = append(st.queue, queueEntry{job: j})
	st.qlive++
	gQueuePeak.SetMax(float64(st.qlive))
	st.dispatch()
	st.assertBound("requeue")
	st.publishState()
}

// failJob reports a job permanently failed and retires it.
func (st *schedState) failJob(j Job, reason string) {
	fj := FailedJob{
		ID: j.ID, Arrival: j.Arrival, FailedAt: st.eng.Now(),
		Retries: st.retries[j.ID], Reason: reason,
	}
	st.stats.Failed = append(st.stats.Failed, fj)
	if st.hooks.onFail != nil {
		st.hooks.onFail(fj)
	}
	st.logFault("fail", -1, j.ID, 0, reason)
	delete(st.killedAt, j.ID)
	st.jobDone()
}

// failQueued fails every still-queued job (the cluster has fully
// drained; nothing can ever start again).
func (st *schedState) failQueued(reason string) {
	for qi := st.qhead; qi < len(st.queue); qi++ {
		e := &st.queue[qi]
		if e.started {
			continue
		}
		e.started = true
		st.qlive--
		st.failJob(e.job, reason)
	}
	st.compactQueue()
}

// --- power excursions ---------------------------------------------------

// scheduleNextExcursion draws and schedules the node's next power-cap
// excursion.
func (st *schedState) scheduleNextExcursion(i int) {
	ex, ok := st.inj.NextExcursion(i)
	if !ok {
		return
	}
	st.scheduleFault(ex.After, evkExcursion, func() { st.excursionStart(i, ex.Frac, ex.Dur) })
}

// excursionStart handles a transient power-cap excursion on node i: the
// node's effective budget drops by frac for dur seconds. A resident job
// is emergency-re-capped (or killed for retry when the derated plan is
// infeasible); an idle node is withheld from placement for the
// duration.
func (st *schedState) excursionStart(i int, frac, dur float64) {
	start := time.Now()
	defer func() { mEventSeconds.Observe(time.Since(start).Seconds()) }()
	st.accountPower()
	mFaultsInjected.Inc()
	st.stats.Faults.Injected++
	st.stats.Faults.Excursions++
	st.derated[i] = true
	st.logFault("excursion", i, "", 0, fmt.Sprintf("budget derated %.0f%% for %.1fs", frac*100, dur))
	if rj := st.runningOn[i]; rj != nil {
		st.recapJob(rj, i, frac)
	} else {
		st.syncNode(i)
	}
	st.scheduleFault(dur, evkExcursionEnd, func() { st.excursionEnd(i) })
	st.reconcile("excursion", st.s.Config.Reallocate)
}

// recapJob derates a running job's uniform per-node budget by frac
// (barrier-synchronised jobs run at the slowest node's pace, so the
// whole job steps down to the derated node's level). The derated node's
// cut is held in reserve — not grantable until the excursion ends — and
// the other nodes' cuts return to the free pool. An infeasible re-cap
// kills the job for retry elsewhere (migration).
func (st *schedState) recapJob(rj *runningJob, node int, frac float64) {
	old := rj.perNode
	b := power.DerateBudget(old, frac)
	feasible := b.CPU >= 1
	var newIter float64
	if feasible {
		e, err := st.previewRetune(rj, b)
		if err != nil {
			feasible = false
		} else {
			newIter = e.IterTime
		}
	}
	if !feasible {
		st.stats.Faults.Migrations++
		st.logFault("migrate", node, rj.job.ID, 0, "re-cap infeasible on fixed configuration; killed for retry")
		st.killJob(rj, node, fmt.Sprintf("power excursion on node %d", node))
		return
	}
	rj.progressTo(st.eng.Now())
	n := float64(len(rj.globalIDs))
	cut := old.Total() - b.Total()
	released := cut * (n - 1)
	st.reserved[node] += cut
	st.freeW += released
	// Subtract the delta rather than assigning b.Total()*n: under
	// variability-aware coordination the per-node budgets differ, so
	// powerUsed (the plan's true total) is not PerNode[0].Total()*n and
	// an absolute rewrite would mint or destroy watts.
	rj.powerUsed -= cut * n
	rj.perNode = b
	rj.baseIterTime = newIter
	rj.iterTime = newIter
	if f := st.jobFactor(rj); f > 1 {
		rj.iterTime = newIter * f
	}
	st.scheduleCompletion(rj)
	st.stats.Faults.WattsReclaimed += released
	gWattsReclaimed.Add(released)
	st.logFault("recap", node, rj.job.ID, released,
		fmt.Sprintf("per-node %.1f→%.1f W, %.1f W reserved", old.Total(), b.Total(), cut))
}

// excursionEnd restores the node's effective budget: the reserved cut
// returns to the free pool and the node may receive placements again.
func (st *schedState) excursionEnd(i int) {
	start := time.Now()
	defer func() { mEventSeconds.Observe(time.Since(start).Seconds()) }()
	st.accountPower()
	st.derated[i] = false
	st.freeW += st.reserved[i]
	st.reserved[i] = 0
	st.logFault("excursion-end", i, "", 0, "")
	st.syncNode(i)
	st.scheduleNextExcursion(i)
	st.reconcile("excursion-end", st.s.Config.Reallocate)
}

// --- stragglers ---------------------------------------------------------

// scheduleNextStraggler draws and schedules the node's next slowdown
// episode.
func (st *schedState) scheduleNextStraggler(i int) {
	sg, ok := st.inj.NextStraggler(i)
	if !ok {
		return
	}
	st.scheduleFault(sg.After, evkStraggler, func() { st.stragglerStart(i, sg.Factor, sg.Dur) })
}

// stragglerStart slows node i down by factor for dur seconds; a
// resident job's iteration time stretches to the worst factor across
// its nodes.
func (st *schedState) stragglerStart(i int, factor, dur float64) {
	start := time.Now()
	defer func() { mEventSeconds.Observe(time.Since(start).Seconds()) }()
	mFaultsInjected.Inc()
	st.stats.Faults.Injected++
	st.stats.Faults.Stragglers++
	st.straggle[i] = factor
	st.logFault("straggler", i, "", 0, fmt.Sprintf("slowdown ×%.2f for %.1fs", factor, dur))
	if rj := st.runningOn[i]; rj != nil {
		st.applyStraggle(rj)
	}
	st.scheduleFault(dur, evkStragglerEnd, func() { st.stragglerEnd(i) })
	st.assertBound("straggler")
	st.publishState()
}

// stragglerEnd restores the node's speed.
func (st *schedState) stragglerEnd(i int) {
	start := time.Now()
	defer func() { mEventSeconds.Observe(time.Since(start).Seconds()) }()
	st.straggle[i] = 1
	st.logFault("straggler-end", i, "", 0, "")
	if rj := st.runningOn[i]; rj != nil {
		st.applyStraggle(rj)
	}
	st.scheduleNextStraggler(i)
	st.assertBound("straggler-end")
	st.publishState()
}

// applyStraggle re-times a running job after a straggler transition on
// one of its nodes.
func (st *schedState) applyStraggle(rj *runningJob) {
	rj.progressTo(st.eng.Now())
	rj.iterTime = rj.baseIterTime * st.jobFactor(rj)
	st.scheduleCompletion(rj)
}

// --- invariants and snapshots ------------------------------------------

// assertBound verifies the core safety invariant after an event: the
// power allocated to running jobs plus the reserve held by active
// excursions never exceeds the cluster bound. A violation (a
// double-granted watt) fails the run. The peak allocation is tracked so
// callers can assert the invariant held at every event timestamp.
func (st *schedState) assertBound(where string) {
	var alloc float64
	for _, rj := range st.running {
		alloc += rj.powerUsed
	}
	var resv float64
	for _, r := range st.reserved {
		resv += r
	}
	total := alloc + resv
	if total > st.stats.PeakAllocW {
		st.stats.PeakAllocW = total
	}
	if total > st.bound+boundSlack && st.bound >= 1 && st.failure == nil {
		st.failure = fmt.Errorf(
			"jobsched: power bound violated after %s at t=%.3f: %.3f W allocated + %.3f W reserved > %.3f W bound",
			where, st.eng.Now(), alloc, resv, st.bound)
	}
}

// publishState publishes the scheduler's post-event state in one atomic
// ring append (queue depth, running set, and the free/allocated/
// reserved decomposition of the bound) and mirrors the headline values
// into the gauges. Readers of the event ring can never observe a torn
// multi-gauge state: each snapshot is internally consistent by
// construction.
func (st *schedState) publishState() {
	var alloc float64
	for _, rj := range st.running {
		alloc += rj.powerUsed
	}
	var resv float64
	for _, r := range st.reserved {
		resv += r
	}
	quar := 0
	if st.inj != nil {
		quar = st.inj.Unhealthy()
	}
	telemetry.Default.Events().Append(telemetry.Event{
		Kind: telemetry.KindSchedState, TimeS: st.eng.Now(),
		BoundWatts: st.bound, FreeWatts: st.freeW,
		AllocWatts: alloc, ReservedWatts: resv,
		QueueDepth: st.qlive, RunningJobs: len(st.running),
		QuarantinedNodes: quar,
	})
	gQueueDepth.Set(float64(st.qlive))
	gFreeWatts.Set(st.freeW)
	gQuarantined.Set(float64(quar))
}
