package jobsched

// Scheduler pipeline stages beyond plain dispatch: the feasibility
// filter and affinity ranking that shrink and order the cluster view
// offered to the coordinator, power-aware preemption (evict the
// cheapest set of strictly-lower-priority running jobs whose reclaimed
// watts and nodes admit a blocked higher-priority job), and the
// bounded reconciler that converges desired-versus-actual placement
// after node-health or bound changes instead of patching event by
// event. All of it is gated so that runs without priorities or
// constraints take the exact legacy code paths.

import (
	"fmt"
	"math"

	"repro/internal/coordinator"
	"repro/internal/hw"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Telemetry handles of the priority pipeline.
var (
	mJobsPreempted = telemetry.Default.Counter("clip_jobs_preempted_total",
		"running jobs evicted and re-enqueued in favour of a higher-priority job")
	gPreemptWatts = telemetry.Default.Gauge("clip_preempt_watts_reclaimed_total",
		"cumulative watts reclaimed from preempted jobs")
	mReconcilePasses = telemetry.Default.Counter("clip_reconcile_passes_total",
		"reconciler convergence passes after node-health or bound changes")
)

// sortInts is an allocation-free insertion sort for small node-id
// slices (ranked placements emit globals out of order).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// constraintSatisfiable reports whether any cluster node satisfies the
// app's hard constraints, ignoring occupancy — a queued job may wait
// for busy nodes, but a constraint no node can ever satisfy fails the
// job at arrival instead of queueing it forever.
func (st *schedState) constraintSatisfiable(app *workload.Spec) bool {
	c := &app.Constraint
	for i, n := range st.s.Cluster.Nodes {
		if c.Allows(i, n.PowerEff) {
			return true
		}
	}
	return false
}

// rankLess orders feasible node ids for an affinity-ranked view:
// preferred nodes first, then power efficiency ascending, node id as
// the total tiebreak.
func (st *schedState) rankLess(c *workload.NodeConstraint, a, b int) bool {
	pa, pb := 1, 1
	if c.Prefers(a) {
		pa = 0
	}
	if c.Prefers(b) {
		pb = 0
	}
	if pa != pb {
		return pa < pb
	}
	ea, eb := st.s.Cluster.Nodes[a].PowerEff, st.s.Cluster.Nodes[b].PowerEff
	if ea != eb {
		return ea < eb
	}
	return a < b
}

// feasibleIDs filters pool (global node ids) through the app's hard
// constraints into dst's storage and, when the app prefers nodes,
// ranks the survivors (stable insertion sort — small pools, no
// allocation at steady state). Reports whether the result is ranked.
func (st *schedState) feasibleIDs(app *workload.Spec, pool, dst []int) ([]int, bool) {
	c := &app.Constraint
	ids := dst[:0]
	for _, id := range pool {
		if c.Allows(id, st.s.Cluster.Nodes[id].PowerEff) {
			ids = append(ids, id)
		}
	}
	ranked := len(c.PreferNodes) > 0
	if ranked {
		for i := 1; i < len(ids); i++ {
			v := ids[i]
			j := i - 1
			for j >= 0 && st.rankLess(c, v, ids[j]) {
				ids[j+1] = ids[j]
				j--
			}
			ids[j+1] = v
		}
	}
	return ids, ranked
}

// feasibleView is the pipeline's feasibility stage: the cluster view
// and node pool offered to the coordinator for one job, which is the
// plain free view for unconstrained apps (the allocation-free common
// case) and the constraint-filtered, optionally affinity-ranked subset
// otherwise. The view is a pure function of the free set per
// application, so dispatch-cache entries stamped with (freeVer, wBits)
// remain sound across repeated calls.
func (st *schedState) feasibleView(app *workload.Spec) (*hw.Cluster, []int, bool) {
	if app.Constraint.Zero() {
		return st.freeCluster(), st.free, false
	}
	ids, ranked := st.feasibleIDs(app, st.free, st.feasIDs)
	st.feasIDs = ids
	if len(ids) == 0 {
		return nil, ids, false
	}
	st.feasSub = fillSub(st.feasSub, st.s.Cluster, ids)
	return st.feasSub, ids, ranked
}

// victimLess is the preemption cost order: lowest priority first, then
// cheapest reclaimed watts, then job id — evicting in this order
// yields the minimal-cost victim set for a greedy prefix scan.
func victimLess(a, b *runningJob) bool {
	if a.job.Priority != b.job.Priority {
		return a.job.Priority < b.job.Priority
	}
	if a.powerUsed != b.powerUsed {
		return a.powerUsed < b.powerUsed
	}
	return a.job.ID < b.job.ID
}

// preemptPass runs once per dispatch fixpoint when priorities are in
// play and nothing could start: it picks the highest-priority blocked
// job, plans the smallest prefix of the cost-ordered victim set whose
// reclaimed watts and nodes make the job placeable, and commits the
// evictions. The freed resources are consumed by the dispatch rescan
// that follows (identical pool and watts, so the planned placement is
// reproduced deterministically). Returns whether anything was evicted.
func (st *schedState) preemptPass() bool {
	if st.qlive == 0 || len(st.running) == 0 {
		return false
	}
	order := st.scanOrder()
	if len(order) == 0 {
		return false
	}
	top := st.queue[order[0]].job
	victims := st.preVictims[:0]
	for _, rj := range st.running {
		if rj.job.Priority < top.Priority {
			victims = append(victims, rj)
		}
	}
	st.preVictims = victims
	if len(victims) == 0 {
		return false
	}
	// Map iteration order is random; the full (priority, watts, id) key
	// makes the sorted order deterministic regardless.
	for i := 1; i < len(victims); i++ {
		v := victims[i]
		j := i - 1
		for j >= 0 && victimLess(v, victims[j]) {
			victims[j+1] = victims[j]
			j--
		}
		victims[j+1] = v
	}
	k := st.planPreemption(top, victims)
	if k == 0 {
		return false
	}
	for i := 0; i < k; i++ {
		st.preemptJob(victims[i], top.ID)
	}
	st.assertBound("preempt")
	return true
}

// planPreemption finds the smallest k such that evicting the first k
// cost-ordered victims makes top placeable within the bound, probing
// hypothetical pools with the planner's own scratch (never the shared
// dispatch scratch or cache) and a quiet coordinator. Returns 0 when
// no prefix suffices. The probe replicates tryStart's admission gates
// — constraint filter, placement, and the CapOK duty-cycling rule
// against the post-eviction running count — so a committed plan is
// guaranteed to start the job on the rescan.
func (st *schedState) planPreemption(top Job, victims []*runningJob) int {
	prof, pd, err := st.s.CLIP.Predictor(top.App)
	if err != nil {
		st.failure = err
		return 0
	}
	candW := st.freeW
	pool := append(st.preIDs[:0], st.free...)
	for k := 1; k <= len(victims); k++ {
		v := victims[k-1]
		candW += v.powerUsed
		for _, id := range v.globalIDs {
			// Mirror releaseNodes: only placeable nodes rejoin the pool
			// under fault injection.
			if st.inj == nil || st.placeable(id) {
				pool = append(pool, id)
			}
		}
		sortInts(pool)
		st.preIDs = pool
		if candW <= 0 || len(pool) == 0 {
			continue
		}
		ids, ranked := st.feasibleIDs(top.App, pool, st.feasIDs)
		st.feasIDs = ids[:0]
		if len(ids) == 0 {
			continue
		}
		st.preSub = fillSub(st.preSub, st.s.Cluster, ids)
		st.preCoord = coordinator.Coordinator{Cluster: st.preSub, Ranked: ranked, Quiet: true}
		if err := st.preCoord.Place(top.App, prof, pd, candW, &st.preSc, &st.prePl); err != nil {
			continue
		}
		if !st.prePl.NodeCfg.CapOK && len(st.running)-k > 0 {
			continue
		}
		if len(st.running)-k < 0 {
			st.failure = fmt.Errorf("jobsched: preemption plan evicts %d of %d running jobs", k, len(st.running))
			return 0
		}
		return k
	}
	return 0
}

// preemptJob evicts one running job in favour of forID: its completion
// is withdrawn, its watts reclaimed and nodes released, and the job is
// re-enqueued at the tail exactly once — no backoff and no retry
// accounting, because eviction is a scheduling decision, not a fault.
// The caller must have verified the victim's priority is strictly
// below the preemptor's.
func (st *schedState) preemptJob(rj *runningJob, forID string) {
	st.accountPower()
	if rj.completion != nil {
		rj.completion.Cancel()
		rj.completion = nil
	}
	j := rj.job
	delete(st.running, j.ID)
	st.shadowOK = false
	reclaimed := rj.powerUsed
	st.freeW += reclaimed
	mJobsPreempted.Inc()
	gPreemptWatts.Add(reclaimed)
	st.stats.Preemptions++
	if st.preempts == nil {
		st.preempts = make(map[string]int)
	}
	st.preempts[j.ID]++
	st.releaseNodes(rj.globalIDs)
	st.releaseRecord(rj) // rj must not be touched below this line
	st.logFault("preempt", -1, j.ID, reclaimed, fmt.Sprintf("evicted for higher-priority %s", forID))
	st.queue = append(st.queue, queueEntry{job: j})
	st.qlive++
	gQueuePeak.SetMax(float64(st.qlive))
}

// maxReconcilePasses bounds the reconciler's re-dispatch loop; a
// coverage gap that survives this many fixpoints is irreducible and
// fails the run instead of spinning.
const maxReconcilePasses = 8

// reconcile converges placement after a disruptive state change (node
// crash or recovery, excursion, bound change, shard rejoin): it
// re-runs the placement pipeline to a fixpoint, offers surplus to
// running jobs when reallocation is enabled, and audits desired-
// versus-actual coverage — a queued job the decision cache proves
// startable under the current free set must have been started (the
// SystemScheduler-style eventual-coverage property). A detected gap is
// retried with bounded re-dispatch; only an irreducible gap fails the
// run. The Σ-bound invariant is asserted and the post-event state
// published exactly as the legacy per-handler sequences did.
func (st *schedState) reconcile(where string, realloc bool) {
	passes := 1
	st.dispatch()
	for st.uncovered() != "" && passes < maxReconcilePasses {
		passes++
		st.dispatch()
	}
	if realloc {
		st.reallocate()
	}
	mReconcilePasses.Add(uint64(passes))
	if id := st.uncovered(); id != "" && st.failure == nil {
		st.failure = fmt.Errorf(
			"jobsched: coverage violation after %s at t=%.3f: job %q is dispatchable but still queued",
			where, st.eng.Now(), id)
	}
	st.assertBound(where)
	st.publishState()
}

// uncovered returns the id of a queued job that the dispatch decision
// cache proves startable right now, or "". After a dispatch fixpoint
// the head of the scan order must not be provably startable — its
// cache entry either went stale (the free set moved on), records
// infeasibility, or is held by the CapOK duty-cycling gate; anything
// else is a hole in dispatch.
func (st *schedState) uncovered() string {
	if st.qlive == 0 || st.failure != nil {
		return ""
	}
	var j Job
	if st.anyPri {
		order := st.scanOrder()
		if len(order) == 0 {
			return ""
		}
		j = st.queue[order[0]].job
	} else {
		qi := st.qhead
		for qi < len(st.queue) && st.queue[qi].started {
			qi++
		}
		if qi >= len(st.queue) {
			return ""
		}
		j = st.queue[qi].job
	}
	e := st.dcache[j.App]
	if e == nil || e.freeVer != st.freeVer || e.wBits != math.Float64bits(st.freeW) {
		return "" // no decision recorded for the current state
	}
	if e.state != entryEvaled {
		return "" // infeasible, or never reached evaluation
	}
	if !e.pl.capOK && len(st.running) > 0 {
		return "" // duty-cycling gate: waiting for more power
	}
	return j.ID
}
