package jobsched

// Hot-path regression guards. The scheduler's steady-state event path
// is allocation-free by design (pooled state, record arena, dispatch
// cache, scratch reuse); these tests turn that property into a gate so
// an accidental per-event allocation fails `go test` instead of slowly
// eroding BENCH_results.json. They also pin the two behavioural
// contracts the optimisation must not bend: Run never mutates the
// caller's job slice, and SubmitBatch is observably identical to the
// same submissions made one at a time.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/workload"
)

// TestRunDoesNotMutateCallerJobs: Run sorts arrivals in its own scratch
// buffer; the slice the caller handed in (order and contents) must come
// back untouched, run after run.
func TestRunDoesNotMutateCallerJobs(t *testing.T) {
	s := sched(t, Config{Bound: 2000, Policy: Backfill})
	list := []Job{
		{ID: "late", App: workload.CoMD(), Arrival: 30},
		{ID: "early", App: workload.LUMZ(), Arrival: 0},
		{ID: "mid", App: workload.SPMZ(), Arrival: 10},
		{ID: "tied", App: workload.AMG(), Arrival: 10},
	}
	orig := append([]Job(nil), list...)
	for run := 0; run < 2; run++ {
		if _, err := s.Run(list); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(list, orig) {
			t.Fatalf("run %d mutated the caller's slice:\n got %+v\nwant %+v", run, list, orig)
		}
	}
}

// TestRunSteadyStateAllocs: once the pooled state, dispatch cache and
// scratch buffers are warm, a full schedule of N jobs may allocate only
// the escaping result object and its amortised slice growth — a
// sub-linear total, not a per-job cost (terminal snapshots intern
// their node ids in the stats arena, and the telemetry ring recycles
// its per-node budget buffers).
func TestRunSteadyStateAllocs(t *testing.T) {
	s := sched(t, Config{Bound: 2000, Policy: Backfill, Reallocate: true})
	apps := []*workload.Spec{workload.CoMD(), workload.LUMZ(), workload.SPMZ(), workload.AMG()}
	list := make([]Job, 64)
	for i := range list {
		list[i] = Job{ID: fmt.Sprintf("j%03d", i), App: apps[i%len(apps)], Arrival: float64(i)}
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Run(list); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := s.Run(list); err != nil {
			t.Fatal(err)
		}
	})
	if max := 20 + float64(len(list))/8; avg > max {
		t.Errorf("steady-state Run of %d jobs allocates %.0f objects, want <= %.0f",
			len(list), avg, max)
	}
}

// TestOnlineSubmitAllocs: a steady-state submission into a saturated
// cluster (the common shape under load) allocates only the job's own
// identity — id string, record, index entry — with the queue, event and
// dispatch machinery fully amortised.
func TestOnlineSubmitAllocs(t *testing.T) {
	o := online(t, Config{Bound: 320})
	app := workload.CoMD()
	for i := 0; i < 32; i++ {
		if _, err := o.Submit(fmt.Sprintf("warm-%d", i), app); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	avg := testing.AllocsPerRun(200, func() {
		n++
		if _, err := o.Submit(fmt.Sprintf("load-%d", n), app); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 12 {
		t.Errorf("Online.Submit allocates %.1f objects per call, want <= 12", avg)
	}
}

// statusKey flattens a JobStatus for comparison.
func statusKey(js JobStatus) string {
	return fmt.Sprintf("%s|%v|%.9f|%.9f|%.9f|%d|%v|%d|%.9f|%.9f|%d|%.9f|%s",
		js.ID, js.State, js.Arrival, js.Start, js.Finish, js.QueuePos,
		js.Nodes, js.Cores, js.PerNodeW, js.EstFinish, js.Retries,
		js.ReclaimedW, js.Reason)
}

// TestSubmitBatchMatchesSerialSubmits: one SubmitBatch of N entries
// must leave the driver in exactly the state N serial Submit calls
// produce — same per-entry statuses and errors (including mid-batch
// duplicate rejections), same Jobs() listing, same Cluster() snapshot,
// same started-jobs telemetry delta.
func TestSubmitBatchMatchesSerialSubmits(t *testing.T) {
	// Mixed outcome batch on a one-job bound: first runs, rest queue,
	// two entries are rejected mid-batch (duplicate id, empty id).
	subs := []Submission{
		{ID: "a", App: workload.CoMD()},
		{ID: "b", App: workload.LUMZ()},
		{ID: "a", App: workload.SPMZ()}, // duplicate → rejected
		{ID: "", App: workload.AMG()},   // invalid → rejected
		{ID: "c", App: workload.AMG()},
	}
	serial := online(t, Config{Bound: 320})
	startBefore := mJobsStarted.Value()
	var serialRes []SubmitResult
	for _, sub := range subs {
		var r SubmitResult
		r.Status, r.Err = serial.Submit(sub.ID, sub.App)
		serialRes = append(serialRes, r)
	}
	serialStarted := mJobsStarted.Value() - startBefore

	batched := online(t, Config{Bound: 320})
	startBefore = mJobsStarted.Value()
	batchRes := batched.SubmitBatch(subs)
	batchStarted := mJobsStarted.Value() - startBefore

	if len(batchRes) != len(serialRes) {
		t.Fatalf("batch returned %d results, want %d", len(batchRes), len(serialRes))
	}
	for i := range subs {
		s, b := serialRes[i], batchRes[i]
		if (s.Err == nil) != (b.Err == nil) ||
			(s.Err != nil && s.Err.Error() != b.Err.Error()) {
			t.Errorf("entry %d error: serial %v, batch %v", i, s.Err, b.Err)
		}
		if s.Err == nil && statusKey(s.Status) != statusKey(b.Status) {
			t.Errorf("entry %d status:\n serial %+v\n batch  %+v", i, s.Status, b.Status)
		}
	}
	if batchStarted != serialStarted {
		t.Errorf("jobs-started telemetry: batch +%d, serial +%d", batchStarted, serialStarted)
	}

	sj, bj := serial.Jobs(), batched.Jobs()
	if len(sj) != len(bj) {
		t.Fatalf("Jobs(): serial %d entries, batch %d", len(sj), len(bj))
	}
	for i := range sj {
		if statusKey(sj[i]) != statusKey(bj[i]) {
			t.Errorf("Jobs()[%d]:\n serial %+v\n batch  %+v", i, sj[i], bj[i])
		}
	}
	if sc, bc := serial.Cluster(), batched.Cluster(); !reflect.DeepEqual(sc, bc) {
		t.Errorf("Cluster():\n serial %+v\n batch  %+v", sc, bc)
	}
}
